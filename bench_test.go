package backlog

// This file holds one testing.B benchmark per table/figure of the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md calls
// out (Bloom filters, proactive pruning, horizontal partitioning, the
// naive baseline). Figure benches report their headline metric through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the numbers
// EXPERIMENTS.md discusses; cmd/fsimbench and cmd/btrfsbench print the full
// series at larger scales.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/backlogfs/backlog/internal/btrfssim"
	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/experiments"
	"github.com/backlogfs/backlog/internal/naive"
	"github.com/backlogfs/backlog/internal/storage"
	"github.com/backlogfs/backlog/internal/wal"
	"github.com/backlogfs/backlog/internal/workload"
)

// --- Figure 5: synthetic workload maintenance overhead ---

func BenchmarkFig5SyntheticOverhead(b *testing.B) {
	cfg := experiments.Fig5Config{CPs: 40, OpsPerCP: 1000, DedupRate: 0.10, Seed: 1, SampleEvery: 40}
	b.ReportAllocs()
	var writesPerOp, usPerOp float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Samples[len(res.Samples)-1]
		writesPerOp, usPerOp = last.WritesPerOp, last.TimePerOpUS
	}
	b.ReportMetric(writesPerOp, "writes/blockop")
	b.ReportMetric(usPerOp, "µs/blockop")
}

// --- Figure 6: space overhead with and without maintenance ---

func BenchmarkFig6SpaceOverhead(b *testing.B) {
	cfg := experiments.Fig5Config{CPs: 40, OpsPerCP: 1000, DedupRate: 0.10, Seed: 1, SampleEvery: 40}
	var noMaint, maint float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(cfg, []int{0, 10})
		if err != nil {
			b.Fatal(err)
		}
		noMaint = res.Series[0][len(res.Series[0])-1].SpacePct
		maint = res.Series[10][len(res.Series[10])-1].SpacePct
	}
	b.ReportMetric(noMaint, "spacePct_none")
	b.ReportMetric(maint, "spacePct_maint")
}

// --- Figure 7: NFS-trace maintenance overhead ---

func BenchmarkFig7TraceOverhead(b *testing.B) {
	cfg := experiments.Fig7Config{Hours: 24, OpsPerHour: 300, CPsPerHour: 3, DedupRate: 0.10, Seed: 42}
	var writesPerOp float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var n int
		for _, s := range res.Samples {
			if s.BlockOps > 0 {
				sum += s.WritesPerOp
				n++
			}
		}
		writesPerOp = sum / float64(n)
	}
	b.ReportMetric(writesPerOp, "writes/blockop")
}

// --- Figure 8: NFS-trace space overhead ---

func BenchmarkFig8TraceSpace(b *testing.B) {
	cfg := experiments.Fig7Config{Hours: 24, OpsPerHour: 300, CPsPerHour: 3, DedupRate: 0.10, Seed: 42}
	var none, maint float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(cfg, []int{0, 6})
		if err != nil {
			b.Fatal(err)
		}
		none = res.Series[0][len(res.Series[0])-1].SpacePct
		maint = res.Series[6][len(res.Series[6])-1].SpacePct
	}
	b.ReportMetric(none, "spacePct_none")
	b.ReportMetric(maint, "spacePct_maint")
}

// --- Figure 9: query performance by run length and staleness ---

// fig9DB builds one query database per (staleness) configuration.
func fig9DB(b *testing.B, compacted bool) (*experiments.Env, []uint64) {
	b.Helper()
	env, err := experiments.NewEnv(experiments.EnvConfig{DedupRate: 0.10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewSynthetic(env.FS, workload.DefaultSyntheticConfig(800))
	for i := 0; i < 30; i++ {
		if _, _, err := gen.RunCP(); err != nil {
			b.Fatal(err)
		}
	}
	if compacted {
		env.Cat.ReapZombies()
		if err := env.Eng.Compact(); err != nil {
			b.Fatal(err)
		}
	}
	return env, env.FS.AllocatedBlocks()
}

func benchQueries(b *testing.B, env *experiments.Env, blocks []uint64, runLength int) {
	b.Helper()
	env.Eng.ClearCaches()
	before := env.VFS.Stats()
	b.ResetTimer()
	idx := 0
	for i := 0; i < b.N; i++ {
		if i%runLength == 0 {
			idx = (idx + 7919) % len(blocks) // new run start
		}
		blk := blocks[(idx+i%runLength)%len(blocks)]
		if _, err := env.Eng.Query(blk); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	d := env.VFS.Stats().Sub(before)
	b.ReportMetric(float64(d.PageReads)/float64(b.N), "reads/query")
}

func BenchmarkFig9Query(b *testing.B) {
	for _, compacted := range []bool{false, true} {
		env, blocks := fig9DB(b, compacted)
		for _, rl := range []int{1, 100} {
			name := fmt.Sprintf("maintained=%v/run=%d", compacted, rl)
			b.Run(name, func(b *testing.B) {
				benchQueries(b, env, blocks, rl)
			})
		}
	}
}

// --- Figure 10: query performance before/after maintenance over time ---

func BenchmarkFig10QueryOverTime(b *testing.B) {
	cfg := experiments.Fig10Config{
		CPs: 20, MeasureEvery: 10, OpsPerCP: 400, Queries: 128,
		RunLengths: []int{64}, DedupRate: 0.10, Seed: 1,
	}
	var beforeQPS, afterQPS float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		beforeQPS = res.Before[len(res.Before)-1].QueriesPerSec
		afterQPS = res.After[len(res.After)-1].QueriesPerSec
	}
	b.ReportMetric(beforeQPS, "qps_before_maint")
	b.ReportMetric(afterQPS, "qps_after_maint")
}

// --- Table 1: btrfs microbenchmarks ---

func benchTable1Create(b *testing.B, mode btrfssim.Mode, sizeBlocks, opsPerTx int) {
	fs, err := btrfssim.New(btrfssim.Config{Mode: mode, OpsPerTransaction: opsPerTx})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.CreateFile(sizeBlocks); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := fs.Sync(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTable1Create4K(b *testing.B) {
	for _, mode := range []btrfssim.Mode{btrfssim.ModeBase, btrfssim.ModeOriginal, btrfssim.ModeBacklog} {
		b.Run(mode.String(), func(b *testing.B) {
			benchTable1Create(b, mode, 1, 2048)
		})
	}
}

func BenchmarkTable1Create64K(b *testing.B) {
	for _, mode := range []btrfssim.Mode{btrfssim.ModeBase, btrfssim.ModeOriginal, btrfssim.ModeBacklog} {
		b.Run(mode.String(), func(b *testing.B) {
			benchTable1Create(b, mode, 16, 2048)
		})
	}
}

func BenchmarkTable1Delete4K(b *testing.B) {
	for _, mode := range []btrfssim.Mode{btrfssim.ModeBase, btrfssim.ModeOriginal, btrfssim.ModeBacklog} {
		b.Run(mode.String(), func(b *testing.B) {
			fs, err := btrfssim.New(btrfssim.Config{Mode: mode, OpsPerTransaction: 2048})
			if err != nil {
				b.Fatal(err)
			}
			inos, err := btrfssim.RunCreateFiles(fs, b.N, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for _, ino := range inos {
				if err := fs.DeleteFile(ino); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := fs.Sync(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkTable1Dbench(b *testing.B) {
	for _, mode := range []btrfssim.Mode{btrfssim.ModeBase, btrfssim.ModeBacklog} {
		b.Run(mode.String(), func(b *testing.B) {
			fs, err := btrfssim.New(btrfssim.Config{Mode: mode, OpsPerTransaction: 2048})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := btrfssim.RunDbench(fs, b.N, 1); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkTable1Varmail(b *testing.B) {
	for _, mode := range []btrfssim.Mode{btrfssim.ModeBase, btrfssim.ModeBacklog} {
		b.Run(mode.String(), func(b *testing.B) {
			fs, err := btrfssim.New(btrfssim.Config{Mode: mode, OpsPerTransaction: 2048})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := btrfssim.RunVarmail(fs, 16, b.N, 1); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkTable1Postmark(b *testing.B) {
	for _, mode := range []btrfssim.Mode{btrfssim.ModeBase, btrfssim.ModeBacklog} {
		b.Run(mode.String(), func(b *testing.B) {
			fs, err := btrfssim.New(btrfssim.Config{Mode: mode, OpsPerTransaction: 2048})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := btrfssim.RunPostmark(fs, 64, b.N, 1); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- Ablation: naive read-modify-write baseline (Section 4.1) ---

func BenchmarkAblationNaiveBaseline(b *testing.B) {
	b.Run("naive", func(b *testing.B) {
		vfs := storage.NewMemFS()
		tr, err := naive.New(vfs, 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.AddRef(core.Ref{Block: uint64(i*131) % 1_000_000, Inode: uint64(i), Length: 1}, uint64(i/2000+1))
			if i%2000 == 1999 {
				if err := tr.Checkpoint(uint64(i/2000) + 1); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("backlog", func(b *testing.B) {
		vfs := storage.NewMemFS()
		eng, err := core.Open(core.Options{VFS: vfs, Catalog: core.NewMemCatalog(), CacheBytes: 256 << 10})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.AddRef(core.Ref{Block: uint64(i*131) % 1_000_000, Inode: uint64(i), Length: 1}, uint64(i/2000+1))
			if i%2000 == 1999 {
				if err := eng.Checkpoint(uint64(i/2000) + 1); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- Ablation: Bloom filters on the query path ---

func BenchmarkAblationBloom(b *testing.B) {
	build := func(disable bool) *core.Engine {
		vfs := storage.NewMemFS()
		eng, err := core.Open(core.Options{VFS: vfs, Catalog: core.NewMemCatalog(), DisableBloom: disable})
		if err != nil {
			b.Fatal(err)
		}
		// 40 Level-0 runs whose [min, max] block ranges all overlap but
		// whose block sets are disjoint: only the Bloom filters can tell
		// which single run holds a given block. This is the regime the
		// paper's filters exist for (Section 5.1) — range checks alone
		// cannot prune anything here.
		for cp := uint64(1); cp <= 40; cp++ {
			for i := uint64(0); i < 200; i++ {
				eng.AddRef(core.Ref{Block: i*1_000 + cp, Inode: i, Length: 1}, cp)
			}
			if err := eng.Checkpoint(cp); err != nil {
				b.Fatal(err)
			}
		}
		return eng
	}
	for _, disable := range []bool{false, true} {
		name := "bloom=on"
		if disable {
			name = "bloom=off"
		}
		b.Run(name, func(b *testing.B) {
			eng := build(disable)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk := (uint64(i)%200)*1_000 + uint64(i)%40 + 1
				if _, err := eng.Query(blk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: proactive pruning (Section 5.1) ---

func BenchmarkAblationPruning(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "pruning=on"
		if disable {
			name = "pruning=off"
		}
		b.Run(name, func(b *testing.B) {
			vfs := storage.NewMemFS()
			eng, err := core.Open(core.Options{VFS: vfs, Catalog: core.NewMemCatalog(), DisablePruning: disable})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			// Truncation-style churn: every reference is added and removed
			// within the same CP, the pattern dominating the paper's
			// setattr-heavy trace span.
			for i := 0; i < b.N; i++ {
				cp := uint64(i/1000 + 1)
				ref := core.Ref{Block: uint64(i), Inode: 1, Offset: uint64(i), Length: 1}
				eng.AddRef(ref, cp)
				eng.RemoveRef(ref, cp)
				if i%1000 == 999 {
					if err := eng.Checkpoint(cp); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(eng.Stats().RecordsFlushed)/float64(b.N), "records/op")
		})
	}
}

// --- Ablation: horizontal partitioning (Section 5.3) ---

func BenchmarkAblationPartitions(b *testing.B) {
	for _, parts := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			vfs := storage.NewMemFS()
			opts := core.Options{VFS: vfs, Catalog: core.NewMemCatalog()}
			if parts > 1 {
				opts.Partitions = parts
				opts.PartitionSpan = 1_000_000 / uint64(parts)
			}
			eng, err := core.Open(opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cp := uint64(i/2000 + 1)
				eng.AddRef(core.Ref{Block: uint64(i*7919) % 1_000_000, Inode: uint64(i), Length: 1}, cp)
				if i%2000 == 1999 {
					if err := eng.Checkpoint(cp); err != nil {
						b.Fatal(err)
					}
					// Compact one rotating partition, exercising selective
					// per-partition maintenance.
					if err := eng.CompactPartition(int(cp) % maxInt(parts, 1)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- Parallel ingest: sharded write path vs single write store ---

// BenchmarkParallelIngest drives AddRef from GOMAXPROCS goroutines with
// periodic parallel-flush checkpoints, once against the paper's single
// write store (shards=1) and once against the sharded write path
// (shards=GOMAXPROCS). The per-op time ratio between the two sub-benchmarks
// is the ingest speedup from sharding.
func BenchmarkParallelIngest(b *testing.B) {
	for _, shards := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			eng, err := core.Open(core.Options{
				VFS:         storage.NewMemFS(),
				Catalog:     core.NewMemCatalog(),
				WriteShards: shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			var (
				workerIDs atomic.Uint64
				ops       atomic.Uint64
				cp        atomic.Uint64
				cpMu      sync.Mutex
			)
			cp.Store(1)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := workerIDs.Add(1)
				base := w << 40
				var i uint64
				for pb.Next() {
					eng.AddRef(core.Ref{Block: base + i, Inode: w, Offset: i, Length: 1}, cp.Load())
					i++
					// Whichever worker crosses the cadence boundary drains
					// all shards with a parallel flush; cpMu keeps CP
					// numbers committing in order.
					if n := ops.Add(1); n%100_000 == 0 {
						cpMu.Lock()
						next := cp.Load() + 1
						err := eng.Checkpoint(next)
						if err == nil {
							cp.Store(next)
						}
						cpMu.Unlock()
						if err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
			b.StopTimer()
			if err := eng.Checkpoint(cp.Load() + 1); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// --- Leveled maintenance: sustained ingest under each compaction policy ---

// BenchmarkLeveledIngest measures sustained ingest (AddRef, checkpoint,
// synchronous maintenance after every checkpoint) under the paper's
// merge-to-one policy and under stepped-merge leveled maintenance at the
// default fanout. The compactMB/writeamp metrics are the point: leveled
// maintenance rewrites each record roughly once per level instead of once
// per merge-to-one pass, so its compaction write volume — and with it the
// per-op time — drops well below full's under the same ingest. The raw
// run format is pinned so the byte metrics measure records merged, not
// compressibility.
func BenchmarkLeveledIngest(b *testing.B) {
	const (
		cps        = 96
		opsPerCP   = 500
		blocks     = 1 << 12
		partitions = 4
	)
	for _, bench := range []struct {
		name string
		pol  core.CompactionPolicy
	}{
		{"full", nil},
		{"leveled", core.PolicyLeveled{}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			var compactMB, amp float64
			for i := 0; i < b.N; i++ {
				eng, err := core.Open(core.Options{
					VFS:              storage.NewMemFS(),
					Catalog:          core.NewMemCatalog(),
					Partitions:       partitions,
					HashPartitioning: true,
					CompactionPolicy: bench.pol,
					CompactPacing:    -1,
					Compression:      core.CompressionNone,
				})
				if err != nil {
					b.Fatal(err)
				}
				for cp := 1; cp <= cps; cp++ {
					for j := 0; j < opsPerCP; j++ {
						eng.AddRef(core.Ref{
							Block:  uint64((cp*opsPerCP + j) % blocks),
							Inode:  uint64(2 + cp),
							Offset: uint64(j),
							Length: 1,
						}, uint64(cp))
					}
					if err := eng.Checkpoint(uint64(cp)); err != nil {
						b.Fatal(err)
					}
					if err := eng.MaintainNow(); err != nil {
						b.Fatal(err)
					}
				}
				st := eng.Stats()
				compactMB = float64(st.CompactWriteBytes) / 1e6
				if fl := float64(st.RecordsFlushed) * float64(core.FromRecSize); fl > 0 {
					amp = (fl + float64(st.CompactWriteBytes)) / fl
				}
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(compactMB, "compactMB")
			b.ReportMetric(amp, "writeamp")
		})
	}
}

// --- Write-ahead-log append cost by durability mode ---

// BenchmarkWALAppend measures the per-op cost of the durability ladder:
// CheckpointOnly (no log), Buffered (log append, no fsync), and Sync
// (group-committed fsync per batch), with one writer and with GOMAXPROCS
// writers. The batched/op metric in the Sync rows shows group commit at
// work: with concurrent writers one WriteAt+Sync covers many appends, so
// per-op latency amortizes instead of paying a full fsync each.
func BenchmarkWALAppend(b *testing.B) {
	modes := []wal.Durability{wal.CheckpointOnly, wal.Buffered, wal.Sync}
	writerCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		writerCounts = append(writerCounts, p)
	}
	for _, mode := range modes {
		for _, writers := range writerCounts {
			b.Run(fmt.Sprintf("durability=%s/writers=%d", mode, writers), func(b *testing.B) {
				eng, err := core.Open(core.Options{
					VFS:        storage.NewMemFS(),
					Catalog:    core.NewMemCatalog(),
					Durability: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				var (
					workerIDs atomic.Uint64
					ops       atomic.Uint64
					cp        atomic.Uint64
					cpMu      sync.Mutex
				)
				cp.Store(1)
				// The cadence bounds both write-store growth and the
				// active WAL segment (MemFS models fsync as a copy of the
				// whole file, so an ever-growing segment would overstate
				// Sync's cost).
				checkpointMaybe := func(n uint64) {
					if n%50_000 != 0 {
						return
					}
					cpMu.Lock()
					next := cp.Load() + 1
					err := eng.Checkpoint(next)
					if err == nil {
						cp.Store(next)
					}
					cpMu.Unlock()
					if err != nil {
						b.Error(err)
					}
				}
				// cp.Load() can be one behind a concurrently committing
				// checkpoint, tagging a few records with an
				// already-committed CP — fine for a benchmark that never
				// crashes, but see the AddRef doc before copying this
				// pattern into recovery-sensitive code.
				b.ReportAllocs()
				b.ResetTimer()
				if writers == 1 {
					for i := 0; i < b.N; i++ {
						eng.AddRef(core.Ref{Block: uint64(i), Inode: 1, Offset: uint64(i), Length: 1}, cp.Load())
						checkpointMaybe(ops.Add(1))
					}
				} else {
					b.RunParallel(func(pb *testing.PB) {
						w := workerIDs.Add(1)
						base := w << 40
						var i uint64
						for pb.Next() {
							eng.AddRef(core.Ref{Block: base + i, Inode: w, Offset: i, Length: 1}, cp.Load())
							i++
							checkpointMaybe(ops.Add(1))
						}
					})
				}
				b.StopTimer()
				if st := eng.Stats(); st.WALBatches > 0 {
					b.ReportMetric(float64(st.WALAppends)/float64(st.WALBatches), "appends/batch")
				}
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// --- End-to-end facade benchmark ---

// --- Query latency during background compaction ---

// BenchmarkQueryDuringCompaction measures point-query latency on an
// engine with accumulated runs, idle versus while checkpoints and full
// compactions run continuously in the background. Queries pin an
// immutable run-set view and do their run I/O with no structural lock
// held, so the compacting case stays within a small factor of idle
// instead of stalling for whole k-way merges.
func BenchmarkQueryDuringCompaction(b *testing.B) {
	const (
		parts    = 8
		cps      = 24
		opsPerCP = 2000
		blocks   = 1 << 14
	)
	setup := func(b *testing.B) *core.Engine {
		eng, err := core.Open(core.Options{
			VFS:              storage.NewMemFS(),
			Catalog:          core.NewMemCatalog(),
			Partitions:       parts,
			HashPartitioning: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for cp := uint64(1); cp <= cps; cp++ {
			for i := 0; i < opsPerCP; i++ {
				eng.AddRef(core.Ref{
					Block:  uint64((int(cp)*opsPerCP + i) % blocks),
					Inode:  cp + 1,
					Offset: uint64(i),
					Length: 1,
				}, cp)
			}
			if err := eng.Checkpoint(cp); err != nil {
				b.Fatal(err)
			}
		}
		return eng
	}
	query := func(b *testing.B, eng *core.Engine) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(uint64(i % blocks)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("idle", func(b *testing.B) {
		eng := setup(b)
		defer eng.Close()
		query(b, eng)
	})
	b.Run("compacting", func(b *testing.B) {
		eng := setup(b)
		defer eng.Close()
		// Background churn: keep creating Level-0 runs and compacting
		// them away so a merge is in flight for the whole measurement.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cp := uint64(cps + 1); ; cp++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < opsPerCP; i++ {
					eng.AddRef(core.Ref{Block: uint64(i % blocks), Inode: cp + 1, Offset: uint64(i), Length: 1}, cp)
				}
				if err := eng.Checkpoint(cp); err != nil {
					b.Error(err)
					return
				}
				if err := eng.Compact(); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		query(b, eng)
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// --- Ingest latency during a checkpoint flush ---

// BenchmarkIngestDuringCheckpoint measures AddRef latency idle versus
// while checkpoint flushes run continuously in the background, on a VFS
// that slows run-file writes so the flush has real wall-clock weight.
// With the frozen-write-store checkpoint, updates stall only for the
// freeze and install critical sections (reported as lockwait-µs/cp), not
// for the run-building I/O, so the flushing case stays within a small
// factor of idle instead of stopping for the whole flush.
func BenchmarkIngestDuringCheckpoint(b *testing.B) {
	const prefill = 20_000
	setup := func(b *testing.B) *core.Engine {
		slow := &experiments.SlowVFS{VFS: storage.NewMemFS(), Delay: 100 * time.Microsecond}
		eng, err := core.Open(core.Options{VFS: slow, Catalog: core.NewMemCatalog()})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < prefill; i++ {
			eng.AddRef(core.Ref{Block: uint64(i), Inode: uint64(i), Length: 1}, 1)
		}
		return eng
	}
	b.Run("idle", func(b *testing.B) {
		eng := setup(b)
		defer eng.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.AddRef(core.Ref{Block: uint64(prefill + i), Inode: 7, Offset: uint64(i), Length: 1}, 1)
		}
	})
	b.Run("flushing", func(b *testing.B) {
		eng := setup(b)
		defer eng.Close()
		// Background checkpoints, back to back: each freezes whatever
		// accumulated (the prefill first, then the measured stream's own
		// records) and flushes it through the slowed VFS.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cp := uint64(1); ; cp++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := eng.Checkpoint(cp); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.AddRef(core.Ref{Block: uint64(prefill + i), Inode: 7, Offset: uint64(i), Length: 1}, 1<<40)
			if i%8 == 7 {
				runtime.Gosched() // let the flusher breathe on GOMAXPROCS=1
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		if st := eng.Stats(); st.Checkpoints > 0 {
			b.ReportMetric(float64(st.CheckpointSwapNanos+st.CheckpointInstallNanos)/1e3/float64(st.Checkpoints), "lockwait-µs/cp")
			b.ReportMetric(float64(st.Checkpoints), "checkpoints")
		}
	})
}

func BenchmarkPublicAPIAddRefCheckpoint(b *testing.B) {
	db, err := Open(Config{InMemory: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.AddRef(Ref{Block: uint64(i), Inode: uint64(i % 100), Offset: uint64(i % 8), Line: 0}, uint64(i/32000+1))
		if i%32000 == 31999 {
			if err := db.Checkpoint(uint64(i/32000) + 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Drop-based expiry vs compaction reclaim ---

// benchSealedDB builds a database of `epochs` sealed CP-windowed Combined
// runs, each retained by a per-epoch snapshot (see the Retention and
// expiry section of the package docs).
func benchSealedDB(b *testing.B, fs *storage.MemFS, epochs, perEpoch, blocks int) *DB {
	b.Helper()
	db, err := openVFS(fs, Config{InMemory: true, WriteShards: 1})
	if err != nil {
		b.Fatal(err)
	}
	cp := uint64(1)
	for e := 0; e < epochs; e++ {
		if err := db.Catalog().CreateSnapshot(0, cp); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < perEpoch; i++ {
			db.AddRef(Ref{Block: uint64(i % blocks), Inode: uint64(e + 2), Offset: uint64(i), Length: 1}, cp)
		}
		if err := db.Checkpoint(cp); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < perEpoch; i++ {
			db.RemoveRef(Ref{Block: uint64(i % blocks), Inode: uint64(e + 2), Offset: uint64(i), Length: 1}, cp+1)
		}
		if err := db.Checkpoint(cp + 1); err != nil {
			b.Fatal(err)
		}
		if err := db.eng.CompactTiered(); err != nil {
			b.Fatal(err)
		}
		cp += 2
	}
	return db
}

// BenchmarkExpireVsCompact reclaims the same deleted snapshots two ways:
// Expire drops their CP-windowed runs by manifest edit, Compact merges
// every run and purges record by record. The io-bytes/op metric is the
// headline — expiry must come in at least an order of magnitude under
// compaction (it reads nothing at all).
func BenchmarkExpireVsCompact(b *testing.B) {
	const (
		epochs   = 8
		perEpoch = 1024
		blocks   = 256
		retain   = 1
	)
	paths := []struct {
		name    string
		reclaim func(*DB) error
	}{
		{"expire", func(db *DB) error { _, err := db.Expire(); return err }},
		{"compact", (*DB).Compact},
	}
	for _, p := range paths {
		b.Run(p.name, func(b *testing.B) {
			var ioBytes, ioReads int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fs := storage.NewMemFS()
				db := benchSealedDB(b, fs, epochs, perEpoch, blocks)
				for e := 0; e < epochs-retain; e++ {
					if err := db.Catalog().DeleteSnapshot(0, uint64(2*e+1)); err != nil {
						b.Fatal(err)
					}
				}
				before := fs.Stats()
				b.StartTimer()
				if err := p.reclaim(db); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				d := fs.Stats().Sub(before)
				ioBytes += d.BytesRead + d.BytesWritten
				ioReads += d.BytesRead
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(ioBytes)/float64(b.N), "io-bytes/op")
			b.ReportMetric(float64(ioReads)/float64(b.N), "read-bytes/op")
		})
	}
}
