package backlog

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// ingest writes a small workload so every hot path has been exercised at
// least once: adds, removes, a checkpoint, queries.
func ingest(t *testing.T, db *DB) {
	t.Helper()
	for i := uint64(0); i < 64; i++ {
		db.AddRef(Ref{Block: i, Line: 1, Inode: i, Offset: i}, 1)
	}
	db.RemoveRef(Ref{Block: 0, Line: 1, Inode: 0, Offset: 0}, 2)
	if err := db.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(1); err != nil {
		t.Fatal(err)
	}
	err := db.QueryRange(0, 8, func(uint64, []Owner) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	// MetricsSampleEvery 1 times every hot op, making histogram counts
	// exact; the default sampling path is covered by TestMetricsSampling.
	db, err := Open(Config{InMemory: true, Metrics: true, MetricsSampleEvery: 1, Durability: DurabilitySync})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingest(t, db)

	s := db.Metrics()
	if v, ok := s.Counter("backlog_refs_added_total"); !ok || v != 64 {
		t.Fatalf("backlog_refs_added_total = %d, %v; want 64, true", v, ok)
	}
	if v, ok := s.Counter("backlog_checkpoints_total"); !ok || v != 1 {
		t.Fatalf("backlog_checkpoints_total = %d, %v; want 1, true", v, ok)
	}
	// QueryRange counts each block queried; plus the single Query.
	if v, ok := s.Counter("backlog_queries_total"); !ok || v != 9 {
		t.Fatalf("backlog_queries_total = %d, %v; want 9, true", v, ok)
	}
	for _, name := range []string{
		"backlog_addref_ns", "backlog_removeref_ns", "backlog_query_ns",
		"backlog_queryrange_ns", "backlog_wal_append_ns",
		"backlog_wal_batch_records", "backlog_checkpoint_freeze_ns",
		"backlog_checkpoint_flush_ns", "backlog_checkpoint_install_ns",
	} {
		h, ok := s.Histogram(name)
		if !ok {
			t.Fatalf("histogram %s not registered", name)
		}
		if h.Count == 0 {
			t.Errorf("histogram %s recorded nothing", name)
		}
	}
	if h, _ := s.Histogram("backlog_addref_ns"); h.Count != 64 {
		t.Errorf("backlog_addref_ns count = %d, want 64", h.Count)
	}

	// The registry mirrors Stats — same atomics, read at snapshot time.
	st := db.Stats()
	if v, _ := s.Counter("backlog_refs_removed_total"); v != st.RefsRemoved {
		t.Errorf("registry RefsRemoved %d != Stats %d", v, st.RefsRemoved)
	}
	if v, _ := s.Counter("backlog_records_flushed_total"); v != st.RecordsFlushed {
		t.Errorf("registry RecordsFlushed %d != Stats %d", v, st.RecordsFlushed)
	}
}

func TestMetricsDisabledIsZero(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	ingest(t, db)
	s := db.Metrics()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("disabled metrics snapshot not empty: %+v", s)
	}
	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("disabled WriteMetrics wrote %d bytes", buf.Len())
	}
}

func TestMetricsSampling(t *testing.T) {
	// With default sampling, counters stay exact while hot-op histograms
	// record a subset; background histograms (checkpoint phases) still
	// time every occurrence.
	db, err := Open(Config{InMemory: true, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := uint64(0); i < 256; i++ {
		db.AddRef(Ref{Block: i, Line: 1, Inode: i, Offset: i}, 1)
	}
	if err := db.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	s := db.Metrics()
	if v, _ := s.Counter("backlog_refs_added_total"); v != 256 {
		t.Errorf("backlog_refs_added_total = %d, want exact 256", v)
	}
	h, ok := s.Histogram("backlog_addref_ns")
	if !ok {
		t.Fatal("backlog_addref_ns not registered")
	}
	if h.Count == 0 || h.Count >= 256 {
		t.Errorf("sampled backlog_addref_ns count = %d, want in (0, 256)", h.Count)
	}
	if h, _ := s.Histogram("backlog_checkpoint_freeze_ns"); h.Count != 1 {
		t.Errorf("backlog_checkpoint_freeze_ns count = %d, want 1 (never sampled)", h.Count)
	}
}

func TestWriteMetricsPrometheus(t *testing.T) {
	db, err := Open(Config{InMemory: true, Metrics: true, MetricsSampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingest(t, db)
	var buf bytes.Buffer
	if err := db.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE backlog_refs_added_total counter",
		"backlog_refs_added_total 64",
		"# TYPE backlog_addref_ns histogram",
		`backlog_addref_ns_bucket{le="+Inf"}`,
		"backlog_addref_ns_count 64",
		`backlog_ws_records{shard="0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteMetrics output missing %q", want)
		}
	}
}

type recordingTracer struct {
	mu     sync.Mutex
	starts int
	ends   []OpEvent
}

func (r *recordingTracer) OpStart(ev OpEvent) {
	r.mu.Lock()
	r.starts++
	r.mu.Unlock()
}

func (r *recordingTracer) OpEnd(ev OpEvent) {
	r.mu.Lock()
	r.ends = append(r.ends, ev)
	r.mu.Unlock()
}

func TestConfigTracer(t *testing.T) {
	tr := &recordingTracer{}
	db, err := Open(Config{InMemory: true, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingest(t, db)

	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.starts != len(tr.ends) {
		t.Fatalf("starts %d != ends %d", tr.starts, len(tr.ends))
	}
	counts := map[OpKind]int{}
	for _, ev := range tr.ends {
		counts[ev.Kind]++
		if ev.Dur < 0 {
			t.Errorf("%v: negative duration %v", ev.Kind, ev.Dur)
		}
	}
	if counts[OpAddRef] != 64 {
		t.Errorf("OpAddRef events = %d, want 64", counts[OpAddRef])
	}
	if counts[OpRemoveRef] != 1 || counts[OpCheckpoint] != 1 ||
		counts[OpQuery] != 1 || counts[OpQueryRange] != 1 {
		t.Errorf("unexpected op counts: %v", counts)
	}
}

func TestSlowOps(t *testing.T) {
	db, err := Open(Config{InMemory: true, SlowOpThreshold: time.Nanosecond, SlowOpLog: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingest(t, db)
	ops := db.SlowOps()
	if len(ops) == 0 || len(ops) > 16 {
		t.Fatalf("SlowOps returned %d events, want 1..16", len(ops))
	}
}

func TestDebugAddrEndToEnd(t *testing.T) {
	db, err := Open(Config{InMemory: true, DebugAddr: "127.0.0.1:0", SlowOpThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingest(t, db)

	addr := db.DebugAddr()
	if addr == "" {
		t.Fatal("DebugAddr is empty")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"backlog_refs_added_total 64",
		"# TYPE backlog_addref_ns histogram",
		"backlog_wal_batch_records",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Close shuts the listener down.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Error("debug listener still serving after Close")
	}
}

func TestDebugAddrInUse(t *testing.T) {
	db, err := Open(Config{InMemory: true, DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := Open(Config{InMemory: true, DebugAddr: db.DebugAddr()}); err == nil {
		t.Fatal("Open with an in-use DebugAddr should fail")
	}
}

func TestValidateObservability(t *testing.T) {
	cfg := Config{InMemory: true, SlowOpThreshold: -time.Second}
	if err := cfg.Validate(); err == nil {
		t.Error("negative SlowOpThreshold should fail validation")
	}
	cfg = Config{InMemory: true, SlowOpLog: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative SlowOpLog should fail validation")
	}
}
