// Package backlog is a log-structured back-reference database for
// write-anywhere (no-overwrite) file systems, reproducing "Tracking Back
// References in a Write-Anywhere File System" (Macko, Seltzer, Smith;
// FAST 2010).
//
// Back references are the inverted index of file system metadata: they map
// a physical block number to every (inode, offset, snapshot line) that
// references it, across live file systems, snapshots, and writable clones.
// They make block-relocation maintenance — defragmentation, volume
// shrinking, data migration between storage tiers — practical in the
// presence of block sharing from snapshots and deduplication.
//
// The design is write-optimized: reference additions and removals are
// buffered in memory and written as sorted, immutable runs at every
// consistency point, with no disk reads on the update path. Queries join
// the From and To tables lazily; periodic compaction precomputes the join,
// purges records of deleted snapshots, and keeps query performance stable.
// Writable clones are represented implicitly through structural
// inheritance, so cloning a snapshot writes no back-reference records at
// all.
//
// # Sharded write path
//
// The in-memory write store is hash-partitioned by physical block number
// into N shards (Config.WriteShards, default runtime.GOMAXPROCS(0)), each
// with its own lock and From/To trees. Concurrent AddRef and RemoveRef
// calls on different shards never contend, so ingest scales with cores;
// AddRef, RemoveRef, Query, and QueryRange are all safe for concurrent
// use. Checkpoint flushes every shard in parallel — each shard sorts and
// writes its own immutable runs — and installs all of them in one atomic
// manifest commit, so durability semantics are identical to the
// single-shard design. Compaction later merges the per-shard runs exactly
// as it merges per-CP runs. Set WriteShards to 1 to reproduce the paper's
// single write store.
//
// # Checkpoint concurrency
//
// Checkpoint does not stop the world. It takes the engine's structural
// lock exclusively only for two brief in-memory critical sections: a
// freeze that swaps every shard's write-store trees into per-shard frozen
// slots (installing fresh, empty active trees), and an install that
// atomically commits the finished runs, the consistency point, and any
// relocation deletion vectors, then clears the frozen slots. The
// expensive part — sorting and writing every shard's runs, in parallel —
// happens between the two with no structural lock held. Concretely,
// during a checkpoint flush:
//
//   - AddRef and RemoveRef proceed into the fresh active trees; they
//     carry the next consistency point's tags and are flushed by the next
//     Checkpoint. Proactive pruning cannot cancel against a record that
//     is frozen mid-flush; the late half of the pair is recorded and the
//     two cancel at query and compaction time instead.
//   - Query and QueryRange read the union of the active and frozen trees
//     plus the pinned run-set view — a consistent cut in every phase.
//   - RelocateBlock transplants records out of the frozen trees too
//     (logically: the frozen trees are immutable while the flush reads
//     them, so the old records are masked and re-keyed copies enter the
//     active trees).
//   - A second Checkpoint, a Close, and compaction's pessimistic
//     full-lock fallback all serialize behind the in-flight flush;
//     ordinary (optimistic) compactions run concurrently and validate
//     their view before installing.
//   - In Buffered/Sync durability modes the write-ahead log is "cut" at
//     the freeze: updates logged during the flush land past the cut, so
//     the checkpoint's log retirement never deletes them.
//
// The consistency point itself is unchanged from the paper's model: a
// CP's records commit atomically with the CP number, and Checkpoint(cp)
// requires cp to exceed the last committed consistency point (a stale cp
// is rejected, because committing it would corrupt the write-ahead-log
// replay filter). On a flush error the frozen records are merged back
// into the write stores — retry or replay still holds. Stats reports the
// exclusive-lock time (CheckpointSwapNanos + CheckpointInstallNanos)
// separately from the lock-free flush time (CheckpointFlushNanos); the
// fsimbench "cpstall" experiment and BenchmarkIngestDuringCheckpoint
// measure update latency during a flush against idle.
//
// # Durability
//
// By default (DurabilityCheckpointOnly) reference updates become durable
// only at consistency points, the paper's model: a crash loses everything
// buffered since the last Checkpoint, exactly like file-system state past
// the last consistency point, and Section 5.4's recovery story assumes
// the file system's own journal replays those operations. Deployments
// without such a journal can set Config.Durability instead:
//
//   - DurabilityBuffered appends every AddRef/RemoveRef/RelocateBlock to
//     a write-ahead log (internal/wal) without fsync. A clean Close
//     preserves everything; a crash can lose recent updates but never
//     corrupts the database.
//   - DurabilitySync group-commits the log: concurrent updates are
//     batched into a single write-and-fsync by a single-flight leader, so
//     an acknowledged update survives any crash at a per-batch (not
//     per-op) fsync cost.
//
// Open replays the log tail — tolerating a torn final record — to rebuild
// the write stores, and Checkpoint retires the log, so queries and paper
// experiments behave identically in every mode.
//
// # Maintenance
//
// Periodic compaction (Section 5.2) merges each partition's accumulated
// runs, precomputes the From ⋈ To join, and purges records that refer
// only to deleted snapshots — it is what keeps query cost flat as runs
// accumulate. Two designs make maintenance non-disruptive:
//
//   - Queries and compaction read through immutable, refcounted views of
//     the run sets (LevelDB/RocksDB-style version sets). A query pins a
//     view with a short shared-lock acquisition and does all of its run
//     I/O lock-free; compaction merges against a pinned view and takes
//     the structural lock exclusively only to validate and atomically
//     install its result (retrying if a checkpoint or relocation changed
//     the partition underneath). A run file superseded while a view pins
//     it is deleted only when the last such view is released. Queries
//     therefore never stall behind a running compaction.
//   - With Config.AutoCompact, a background maintenance scheduler runs
//     after every Checkpoint, executing the merges the configured
//     compaction policy plans, pacing itself between merges
//     (Config.CompactPacing) and shutting down cleanly on Close.
//     DB.MaintenanceStats reports its activity, the current worst run
//     count, and the number of still-pending jobs. Without AutoCompact,
//     call Compact explicitly — the paper's cadence experiments
//     (Figures 6, 8–10) do that to control staleness precisely.
//
// # Maintenance policies
//
// Config.CompactionPolicy selects what the scheduler merges:
//
//   - PolicyFull (the default) re-merges the worst partition — the one
//     with the most runs — down to one Combined and one From run whenever
//     it exceeds Config.CompactThreshold (default 8). Queries stay
//     maximally cheap (a steady-state partition holds two runs), but
//     every pass rewrites all of the partition's live records, so
//     sustained ingest pays O(runs-ever-written) write amplification.
//     This is the paper's Section 5.2 maintenance and the pinned
//     behavior of the deterministic paper-figure experiments.
//   - PolicyLeveled merges stepped (LogBase-style): once a table
//     accumulates Config.Fanout runs (default 4) at one level of a
//     partition, the whole level merges into a single run one level up.
//     Each record is rewritten once per level — O(log_Fanout(runs))
//     write amplification instead of O(runs) — at the cost of queries
//     reading up to Fanout-1 runs per level. Under RetainLive, merges
//     never cross the retention reclaim horizon, so sealed
//     consistency-point windows stay individually droppable by expiry.
//
// Pick PolicyFull when queries dominate and ingest is bursty (the
// paper's workloads); pick PolicyLeveled when ingest is sustained and
// compaction write bandwidth is the bottleneck. Small fanouts (2-4)
// favor query latency; larger fanouts (8+) favor write amplification.
// The "levels" fsimbench experiment measures both sides of the trade,
// and "backlogctl stats" prints the per-level run table plus cumulative
// compaction write-bytes of a live database. [DB.Maintain] runs one
// synchronous pass of whatever the configured policy plans; "backlogctl
// compact -policy leveled" drives it from the CLI.
//
// # Retention and expiry
//
// Compaction reclaims records of deleted snapshots one record at a time:
// every surviving record is read, joined, and rewritten. Expiry reclaims
// them wholesale. Every run records the consistency-point window
// [MinCP, MaxCP] its records cover, and once every snapshot old enough to
// reference a Combined run has been deleted — the run's window lies
// entirely below the oldest CP still reachable from the snapshot/clone
// graph — DB.Expire drops the run with a single manifest edit: no record
// is read, no data is rewritten, and the run file itself is deleted only
// after the last in-flight query or compaction pinning it completes.
//
// Expiry is opt-in via Config.Retention:
//
//   - RetainAll (the default) changes nothing. Runs are merged and purged
//     by compaction exactly as the paper describes; DB.Expire finds
//     nothing droppable (compacted runs carry merged windows that always
//     reach the present).
//   - RetainLive switches the background maintainer to CP-tiered
//     compaction: instead of re-merging everything, it seals finished
//     Combined windows (leaving them untouched, their windows disjoint),
//     runs an expiry sweep after every checkpoint, and lets queries skip
//     sealed runs entirely below the reclaim horizon without opening
//     them. Deleting an old snapshot then frees its runs at the cost of a
//     manifest write — orders of magnitude less I/O than a merge.
//
// Snapshot lifecycle operations (create/delete snapshot, clone, line)
// live on the Lifecycle interface returned by DB.Catalog; the equivalent
// methods on DB are deprecated wrappers. Note that expiry is permanent in
// the same sense as the paper's snapshot deletion: re-creating a snapshot
// at an old version after its records expired does not resurrect them.
//
// # Compression
//
// The paper observes (Section 8) that back-reference tables are "highly
// compressible, especially if we compress them by columns". Runs are
// stored column-compressed by default: each leaf page of a run's B-tree
// encodes its records per column as delta + zigzag + LEB128 varints
// (format v2), restarting at every 4 KB page boundary so pages stay
// independently seekable and checksummed. Sorted back-reference records
// differ from their neighbors by tiny per-column deltas, so combined
// tables typically shrink 3-8x, checkpoints write proportionally fewer
// bytes, and a shared cache of decoded pages keeps warm point-query
// latency within a few percent of the raw format.
//
// Config.Compression selects the format for newly written runs:
//
//   - CompressionDelta (the default) writes format-v2 column-delta runs.
//   - CompressionNone writes raw fixed-stride format-v1 runs — the
//     paper's original layout, pinned by the deterministic paper-figure
//     experiments.
//
// The knob applies to new runs only; both formats are always readable,
// an existing v1 database opens and queries under either setting with no
// migration step, and compaction naturally rewrites old runs into the
// configured format. DB.EstimateCompression projects the v2 size of a
// table without rewriting it (using the same codec the writer uses), and
// "backlogctl compression" prints per-table logical versus physical
// bytes. The fsimbench "compress" experiment measures on-disk size,
// checkpoint write-bytes, and cold/warm query latency for both formats.
//
// # Observability
//
// The engine is instrumented end to end, and all of it is off by default:
// with Config.Metrics, Tracer, SlowOpThreshold, and DebugAddr unset, the
// instrumented paths cost one pointer check and take no timestamps, so
// paper-figure experiments stay byte-identical (the fsimbench "obs"
// experiment measures the enabled cost too — within a ~2% throughput
// budget).
//
// Config.Metrics enables the metrics registry:
//
//   - Counters mirroring every Stats field (backlog_refs_added_total,
//     backlog_checkpoints_total, ...), computed from the same atomics at
//     snapshot time so the hot path is never charged twice.
//   - Latency histograms with p50/p90/p99/max on every hot and background
//     path: backlog_addref_ns, backlog_removeref_ns, backlog_query_ns,
//     backlog_queryrange_ns, the write-ahead log's append latency
//     (backlog_wal_append_ns), flush duration (backlog_wal_flush_ns) and
//     group-commit batch-size distribution (backlog_wal_batch_records),
//     the three checkpoint phases (backlog_checkpoint_freeze_ns,
//     _flush_ns, _install_ns — the structured successors of the
//     deprecated Stats.Checkpoint*Nanos counters), compaction
//     (backlog_compaction_ns), and expiry (backlog_expire_ns). To keep
//     enabled overhead within a few percent, per-block hot-op latencies
//     are sampled — one op in Config.MetricsSampleEvery (default 32) is
//     timed — while background-op histograms time every occurrence.
//   - Gauges over live structures, computed at scrape time: per-shard
//     write-store sizes (backlog_ws_records{shard="N"}), frozen
//     generations mid-checkpoint, pinned views (backlog_view_pins),
//     dropped-but-pinned run files (backlog_deferred_run_files), live
//     runs, WAL segments, and on-disk bytes.
//
// DB.Metrics returns the structured snapshot; DB.WriteMetrics renders it
// in the Prometheus text exposition format. Config.DebugAddr starts an
// HTTP listener serving /metrics (a Prometheus scrape target),
// /debug/vars (the same snapshot as JSON, expvar-style), /debug/slowops,
// and the standard net/http/pprof profiling surface under /debug/pprof/:
//
//	scrape_configs:
//	  - job_name: backlog
//	    static_configs:
//	      - targets: ["localhost:6060"]   # Config.DebugAddr
//
// Config.Tracer registers an op-tracing hook: start and end events for
// every AddRef, RemoveRef, Query, QueryRange, RelocateBlock, Checkpoint,
// compaction, and expiry, carrying the op kind, write-store shard,
// consistency point, duration, and error. Both hooks run inline on the
// operation's goroutine, so tracers must be fast and concurrent-safe.
// Config.SlowOpThreshold enables the built-in tracer: a bounded ring
// buffer (Config.SlowOpLogSize entries) retaining only operations at or
// above the threshold, readable via DB.SlowOps or /debug/slowops.
// backlogctl serves the same surfaces on a database directory:
//
//	backlogctl stats -dir DIR -json          # one-shot counters, machine-readable
//	backlogctl metrics -dir DIR              # one-shot Prometheus text
//	backlogctl metrics -dir DIR -watch       # live terminal dashboard
//	backlogctl metrics -addr localhost:6060  # scrape a running process instead
//
// # I/O attribution
//
// Unlike the surfaces above, purpose-tagged I/O attribution is ON by
// default: every ReadAt/WriteAt/Sync/Create/Remove is attributed to the
// subsystem that issued it — wal, checkpoint, compaction, query, expiry,
// recovery, or manifest — at the cost of a few atomic adds per I/O
// (disable with Config.DisableIOAttribution). DB.IOReport returns the
// structured snapshot: per-source bytes and ops, cumulative totals, and
// an online write-amplification monitor comparing user bytes in against
// device bytes out over a rolling window (Config.WriteAmpWindow). With
// Config.Metrics the same accounting is exported as labeled families —
// backlog_io_read_bytes_total{src="..."}, backlog_io_write_bytes_total,
// _read_ops_total, _write_ops_total, _syncs_total, per-source latency
// histograms (backlog_io_read_ns, backlog_io_write_ns), per-table run
// heat (backlog_run_heat_bytes{table="..."}), and backlog_write_amp —
// and Config.DebugAddr serves it as JSON at /debug/io. backlogctl's
// iostat subcommand renders the same report:
//
//	backlogctl iostat -dir DIR               # one-shot (the open's own recovery I/O)
//	backlogctl iostat -addr localhost:6060   # scrape a running process
//	backlogctl iostat -addr HOST:PORT -watch # live refresh
//
// # Configuration defaults
//
// Every Config field's zero value is valid and means:
//
//	Dir              — (required unless InMemory)
//	InMemory         — false: the database lives in Dir
//	CacheBytes       — 0: 32 MB page cache (negative disables caching)
//	Partitions       — 0: one partition
//	PartitionSpan    — 0: unused (required only when Partitions > 1)
//	WriteShards      — 0: runtime.GOMAXPROCS(0) shards
//	Durability       — DurabilityCheckpointOnly (the paper's model)
//	AutoCompact      — false: call Compact explicitly
//	CompactThreshold — 0: threshold 8 (values below 2 clamp to 2)
//	CompactionPolicy — PolicyFull: whole-partition worst-first merging
//	Fanout           — 0: stepped-merge fanout 4 (PolicyLeveled only)
//	CompactPacing    — 0: 2ms between merges (negative disables pacing)
//	Retention        — RetainAll: no expiry, the paper's behavior
//	Compression      — CompressionDelta: format-v2 column-delta runs
//	DisableIOAttribution — false: per-source I/O accounting is on
//	WriteAmpWindow   — 0: 60s rolling write-amplification window
//
// Config.Validate reports structurally invalid configurations (it wraps
// ErrBadConfig); Open calls it first.
//
// # Build, test, bench
//
// The module has no dependencies outside the standard library:
//
//	go build ./...                             # everything, including cmd/ drivers
//	go test ./...                              # unit + integration tests
//	go test -race ./internal/core/...          # concurrent-ingest tests under the race detector
//	go test -bench=. -benchtime=1x -run='^$' ./...   # benchmark smoke pass
//	go test -bench=BenchmarkParallelIngest -run='^$' .  # ingest scaling, 1 shard vs GOMAXPROCS
//
// CI (.github/workflows/ci.yml) runs all of the above plus go vet and a
// gofmt check on every push and pull request.
//
// # Quick start
//
//	db, err := backlog.Open(backlog.Config{Dir: "/tmp/backrefs"})
//	if err != nil { ... }
//	defer db.Close()
//
//	// The file system reports reference changes as they happen.
//	db.AddRef(backlog.Ref{Block: 100, Inode: 2, Offset: 0, Line: 0}, cp)
//	db.RemoveRef(backlog.Ref{Block: 101, Inode: 2, Offset: 1, Line: 0}, cp)
//
//	// Make everything up to cp durable (call at each consistency point).
//	if err := db.Checkpoint(cp); err != nil { ... }
//
//	// Who references block 100?
//	owners, err := db.Query(100)
//
// See the examples directory for share-aware defragmentation, volume
// shrinking, and deduplication analytics built on this API.
package backlog

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/lsm"
	"github.com/backlogfs/backlog/internal/obs"
	"github.com/backlogfs/backlog/internal/storage"
	"github.com/backlogfs/backlog/internal/wal"
)

// Ref identifies one logical reference to a physical extent. Length is in
// blocks; zero means 1 (single-block reference).
type Ref = core.Ref

// Owner is one query result: a logical owner of a block together with the
// consistency-point interval and the retained snapshot versions in which
// the reference exists.
type Owner = core.Owner

// Stats are cumulative engine counters.
type Stats = core.Stats

// IOReport is a snapshot of the purpose-tagged I/O accounting: per-source
// device bytes/ops and the online write-amplification monitor's readings.
// See DB.IOReport.
type IOReport = core.IOReport

// SourceIO is one purpose's counters within an IOReport.
type SourceIO = obs.SourceIO

// Infinity is the To value of a still-live reference.
const Infinity = core.Infinity

// ErrStaleCP is returned (wrapped) by Checkpoint when cp does not exceed
// the last committed consistency point; committing it would corrupt the
// write-ahead-log replay filter.
var ErrStaleCP = core.ErrStaleCP

// Durability selects when reference updates become crash-durable; see the
// Durability section of the package documentation.
type Durability = wal.Durability

const (
	// DurabilityCheckpointOnly (the default) makes updates durable only
	// at consistency points — the paper's behavior. Buffered references
	// are discarded by a crash or Close.
	DurabilityCheckpointOnly = wal.CheckpointOnly
	// DurabilityBuffered appends updates to a write-ahead log without
	// fsync: a clean Close preserves them, a crash may not.
	DurabilityBuffered = wal.Buffered
	// DurabilitySync group-commits the write-ahead log with one fsync per
	// batch: an acknowledged update survives any crash.
	DurabilitySync = wal.Sync
)

// ParseDurability parses a durability mode name ("checkpoint-only",
// "buffered", or "sync") as used by the -durability CLI flags.
func ParseDurability(s string) (Durability, error) { return wal.ParseDurability(s) }

// Config configures Open.
type Config struct {
	// Dir is the directory holding the database. Ignored when InMemory is
	// set.
	Dir string
	// InMemory keeps the database in RAM (useful for tests and
	// simulation).
	InMemory bool
	// CacheBytes sizes the page cache (default 32 MB).
	CacheBytes int64
	// Partitions horizontally partitions the read stores by block number
	// (default 1). PartitionSpan gives the blocks per partition and is
	// required when Partitions > 1.
	Partitions    int
	PartitionSpan uint64
	// WriteShards is the number of hash-partitioned write-store shards
	// (default runtime.GOMAXPROCS(0)). Concurrent AddRef/RemoveRef calls
	// on different shards never contend, and Checkpoint flushes all shards
	// in parallel. Set to 1 for the paper's single write store.
	WriteShards int
	// Durability selects when reference updates become crash-durable
	// (default DurabilityCheckpointOnly; see the package documentation's
	// Durability section).
	Durability Durability
	// AutoCompact runs database maintenance continuously in the
	// background: after each Checkpoint, partitions whose run count
	// exceeds CompactThreshold are compacted worst-first, without
	// blocking queries or updates (see the package documentation's
	// Maintenance section).
	AutoCompact bool
	// CompactThreshold is the per-partition run count that triggers
	// background compaction (default 8; values below 2 are clamped to 2,
	// the run count of a fully compacted partition). Only used with
	// AutoCompact under PolicyFull.
	CompactThreshold int
	// CompactionPolicy selects what background maintenance merges
	// (default PolicyFull; see the package documentation's Maintenance
	// policies section).
	CompactionPolicy CompactionPolicy
	// Fanout is PolicyLeveled's stepped-merge fanout: the per-table run
	// count at one level of a partition that triggers merging the level
	// up (default 4; values below 2 are clamped to 2).
	Fanout int
	// CompactPacing is the pause between consecutive background merges of
	// one maintenance pass (default 2ms; negative disables pacing). Close
	// interrupts an in-flight pause.
	CompactPacing time.Duration
	// Retention selects the snapshot-retention policy (default RetainAll;
	// see the package documentation's Retention and expiry section).
	// RetainLive enables drop-based expiry: the background maintainer
	// (started even without AutoCompact) expires runs after every
	// checkpoint, background compaction seals finished CP windows instead
	// of re-merging them, and queries skip runs below the reclaim horizon.
	Retention RetentionPolicy
	// Compression selects the on-disk format of newly written runs
	// (default CompressionDelta, the format-v2 column-delta encoding; see
	// the package documentation's Compression section). Applies to new
	// runs only — both formats are always readable, and compaction
	// rewrites old runs into the configured format.
	Compression Compression
	// Metrics enables the metrics registry: counters, gauges, and latency
	// histograms over every engine, WAL, and maintenance path, readable
	// via DB.Metrics and DB.WriteMetrics (see the package documentation's
	// Observability section). Off by default; when off, the instrumented
	// paths cost one pointer check and take no timestamps.
	Metrics bool
	// MetricsSampleEvery is the hot-op latency sampling period: one
	// AddRef/RemoveRef/Query per this many ops (per shard, rounded up to
	// a power of two; default 32) is timed into its latency histogram,
	// keeping enabled-metrics overhead within a few percent. Set 1 to
	// time every op. Counters, gauges, and background-op histograms
	// (checkpoint phases, compaction, expiry, WAL) are always exact.
	// Ignored when a Tracer or SlowOpThreshold is set — trace events
	// always carry real durations, so every op is timed.
	MetricsSampleEvery int
	// Tracer, if non-nil, receives start and end events for every engine
	// operation (updates, queries, relocation, checkpoints, compaction,
	// expiry). Hooks run inline on the operation's goroutine, so the
	// tracer must be fast and safe for concurrent use. Setting a Tracer
	// enables per-operation timing even when Metrics is false.
	Tracer Tracer
	// SlowOpThreshold, when positive, enables the built-in slow-op log: a
	// bounded ring buffer retaining operations whose duration is at or
	// above the threshold, readable via DB.SlowOps (and /debug/slowops on
	// the debug listener). Composes with Tracer; both observe every op.
	SlowOpThreshold time.Duration
	// SlowOpLog caps the slow-op ring buffer (default 128 entries). Only
	// used with SlowOpThreshold.
	SlowOpLog int
	// DebugAddr, when non-empty, starts an HTTP listener on the address
	// (for example "localhost:6060", or "127.0.0.1:0" for an ephemeral
	// port — see DB.DebugAddr) serving /metrics in Prometheus text
	// format, /debug/vars (JSON), /debug/slowops, /debug/io, and
	// net/http/pprof under /debug/pprof/. Implies Metrics. The listener
	// is closed by DB.Close.
	DebugAddr string
	// DisableIOAttribution turns off purpose-tagged I/O accounting (on by
	// default; see the package documentation's I/O attribution section
	// and DB.IOReport). Disabling it also zeroes per-run heat tracking
	// and the write-amplification monitor.
	DisableIOAttribution bool
	// WriteAmpWindow is the rolling window of the online write-
	// amplification monitor (default 60s). The monitor samples lazily on
	// IOReport and metric scrapes, so its resolution is bounded by that
	// cadence.
	WriteAmpWindow time.Duration
}

// RetentionPolicy selects how aggressively records of deleted snapshots
// are reclaimed; see Config.Retention.
type RetentionPolicy = core.RetentionPolicy

const (
	// RetainAll keeps every record until a compaction purges it — the
	// paper's baseline behavior and the default.
	RetainAll = core.RetainAll
	// RetainLive expires records wholesale: runs whose consistency-point
	// window falls entirely below the oldest reachable snapshot are
	// dropped without being read.
	RetainLive = core.RetainLive
)

// Compression selects the on-disk run format; see Config.Compression.
type Compression = core.Compression

const (
	// CompressionDelta (the default) writes format-v2 runs: leaf pages
	// encoded per column as delta + zigzag + LEB128 varints.
	CompressionDelta = core.CompressionDelta
	// CompressionNone writes raw fixed-stride format-v1 runs — the
	// paper's original layout.
	CompressionNone = core.CompressionNone
)

// CompactionPolicy selects what background maintenance merges; see
// Config.CompactionPolicy and the package documentation's Maintenance
// policies section.
type CompactionPolicy int

const (
	// PolicyFull (the default) re-merges the worst partition to one
	// Combined and one From run whenever it exceeds CompactThreshold —
	// the paper's Section 5.2 maintenance.
	PolicyFull CompactionPolicy = iota
	// PolicyLeveled merges stepped: Fanout same-level runs merge into one
	// run a level up, bounding write amplification under sustained
	// ingest.
	PolicyLeveled
)

// String returns the policy name as accepted by ParseCompactionPolicy.
func (p CompactionPolicy) String() string {
	switch p {
	case PolicyFull:
		return "full"
	case PolicyLeveled:
		return "leveled"
	default:
		return fmt.Sprintf("CompactionPolicy(%d)", int(p))
	}
}

// ParseCompactionPolicy parses a policy name ("full" or "leveled") as
// used by the -policy CLI flags.
func ParseCompactionPolicy(s string) (CompactionPolicy, error) {
	switch s {
	case "full":
		return PolicyFull, nil
	case "leveled":
		return PolicyLeveled, nil
	default:
		return 0, fmt.Errorf("backlog: unknown compaction policy %q (want full or leveled)", s)
	}
}

// corePolicy maps the public enum onto the engine's policy
// implementation; nil selects the engine's default (PolicyFull).
func (p CompactionPolicy) corePolicy() core.CompactionPolicy {
	if p == PolicyLeveled {
		return core.PolicyLeveled{}
	}
	return nil
}

// Table names accepted by EstimateCompression and reported by Runs.
const (
	TableFrom     = core.TableFrom
	TableTo       = core.TableTo
	TableCombined = core.TableCombined
)

// ErrBadConfig is wrapped by every Config.Validate error.
var ErrBadConfig = errors.New("backlog: invalid Config")

// Validate reports whether the configuration is structurally valid. Open
// calls it first; it is exported so configuration loaded from flags or
// files can be checked early. All errors wrap ErrBadConfig.
func (cfg Config) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadConfig, fmt.Sprintf(format, args...))
	}
	if !cfg.InMemory && cfg.Dir == "" {
		return bad("Dir is required (or set InMemory)")
	}
	if cfg.Partitions < 0 {
		return bad("Partitions is negative (%d)", cfg.Partitions)
	}
	if cfg.Partitions > 1 && cfg.PartitionSpan == 0 {
		return bad("PartitionSpan is required when Partitions > 1")
	}
	if cfg.WriteShards < 0 {
		return bad("WriteShards is negative (%d)", cfg.WriteShards)
	}
	if cfg.CompactThreshold < 0 {
		return bad("CompactThreshold is negative (%d)", cfg.CompactThreshold)
	}
	switch cfg.CompactionPolicy {
	case PolicyFull, PolicyLeveled:
	default:
		return bad("unknown CompactionPolicy (%d)", cfg.CompactionPolicy)
	}
	if cfg.Fanout < 0 {
		return bad("Fanout is negative (%d)", cfg.Fanout)
	}
	if cfg.Fanout == 1 {
		return bad("Fanout 1 cannot shrink a level (want 0 for the default, or >= 2)")
	}
	switch cfg.Durability {
	case DurabilityCheckpointOnly, DurabilityBuffered, DurabilitySync:
	default:
		return bad("unknown Durability (%d)", cfg.Durability)
	}
	switch cfg.Retention {
	case RetainAll, RetainLive:
	default:
		return bad("unknown Retention (%d)", cfg.Retention)
	}
	switch cfg.Compression {
	case CompressionDelta, CompressionNone:
	default:
		return bad("unknown Compression (%d)", cfg.Compression)
	}
	if cfg.SlowOpThreshold < 0 {
		return bad("SlowOpThreshold is negative (%v)", cfg.SlowOpThreshold)
	}
	if cfg.MetricsSampleEvery < 0 {
		return bad("MetricsSampleEvery is negative (%d)", cfg.MetricsSampleEvery)
	}
	if cfg.SlowOpLog < 0 {
		return bad("SlowOpLog is negative (%d)", cfg.SlowOpLog)
	}
	return nil
}

// MaintenanceStats reports the background maintenance scheduler's
// activity; see DB.MaintenanceStats.
type MaintenanceStats = core.MaintenanceStats

// Tracer receives start and end events for every engine operation; see
// Config.Tracer. Implementations must be safe for concurrent use.
type Tracer = obs.Tracer

// OpEvent describes one traced engine operation: kind, write-store shard
// (-1 when not applicable), consistency point, block, start time,
// duration (end events only), and error.
type OpEvent = obs.OpEvent

// OpKind identifies the operation class of a trace event.
type OpKind = obs.OpKind

// Operation kinds reported to a Tracer and in slow-op log entries.
const (
	OpAddRef     = obs.OpAddRef
	OpRemoveRef  = obs.OpRemoveRef
	OpQuery      = obs.OpQuery
	OpQueryRange = obs.OpQueryRange
	OpRelocate   = obs.OpRelocate
	OpCheckpoint = obs.OpCheckpoint
	OpCompact    = obs.OpCompact
	OpExpire     = obs.OpExpire
)

// MetricsSnapshot is a point-in-time copy of every registered metric; see
// DB.Metrics.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is one latency histogram inside a MetricsSnapshot,
// with Quantile and Mean accessors.
type HistogramSnapshot = obs.HistogramSnapshot

// DB is a back-reference database.
type DB struct {
	vfs    storage.VFS
	cat    *core.MemCatalog
	eng    *core.Engine
	reg    *obs.Registry
	debug  *obs.DebugServer
	closed atomic.Bool
}

const catalogFile = "CATALOG"

// Open opens or creates a database. The configuration is validated first;
// errors from an invalid one wrap ErrBadConfig.
func Open(cfg Config) (*DB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var vfs storage.VFS
	if cfg.InMemory {
		vfs = storage.NewMemFS()
	} else {
		d, err := storage.NewDirFS(cfg.Dir)
		if err != nil {
			return nil, err
		}
		vfs = d
	}
	return openVFS(vfs, cfg)
}

// openVFS opens the database on an explicit VFS. Split from Open so crash
// tests can reopen a simulated file system they hold a handle to.
func openVFS(vfs storage.VFS, cfg Config) (*DB, error) {
	cat := core.NewMemCatalog()
	if err := loadCatalog(vfs, cat); err != nil {
		return nil, err
	}
	var reg *obs.Registry
	if cfg.Metrics || cfg.DebugAddr != "" {
		reg = obs.NewRegistry()
	}
	eng, err := core.Open(core.Options{
		VFS:                  vfs,
		Catalog:              cat,
		CacheBytes:           cfg.CacheBytes,
		Partitions:           cfg.Partitions,
		PartitionSpan:        cfg.PartitionSpan,
		WriteShards:          cfg.WriteShards,
		Durability:           cfg.Durability,
		AutoCompact:          cfg.AutoCompact,
		CompactThreshold:     cfg.CompactThreshold,
		CompactionPolicy:     cfg.CompactionPolicy.corePolicy(),
		Fanout:               cfg.Fanout,
		CompactPacing:        cfg.CompactPacing,
		Retention:            cfg.Retention,
		Compression:          cfg.Compression,
		Metrics:              reg,
		MetricsSampleEvery:   cfg.MetricsSampleEvery,
		Tracer:               cfg.Tracer,
		SlowOpThreshold:      cfg.SlowOpThreshold,
		SlowOpLogSize:        cfg.SlowOpLog,
		DisableIOAttribution: cfg.DisableIOAttribution,
		WriteAmpWindow:       cfg.WriteAmpWindow,
	})
	if err != nil {
		return nil, err
	}
	// Catalog persistence goes through the engine's attributed VFS, tagged
	// as manifest I/O: the catalog is commit-point metadata, written
	// alongside checkpoints and snapshot transitions. (The initial
	// loadCatalog above ran before the engine existed and is the one
	// unattributed read of a DB's lifetime.)
	db := &DB{vfs: storage.TagVFS(eng.VFS(), storage.SrcManifest), cat: cat, eng: eng, reg: reg}
	if cfg.DebugAddr != "" {
		srv, err := obs.Serve(cfg.DebugAddr, reg, eng.SlowLog(), obs.Page{
			Path: "/debug/io",
			Handler: func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				_ = json.NewEncoder(w).Encode(eng.IOReport())
			},
		})
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("backlog: debug listener: %w", err)
		}
		db.debug = srv
	}
	return db, nil
}

func loadCatalog(vfs storage.VFS, cat *core.MemCatalog) error {
	f, err := vfs.Open(catalogFile)
	if errors.Is(err, storage.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return err
	}
	if err := json.Unmarshal(buf, cat); err != nil {
		return fmt.Errorf("backlog: decoding catalog: %w", err)
	}
	return nil
}

func (db *DB) saveCatalog() error {
	data, err := json.Marshal(db.cat)
	if err != nil {
		return err
	}
	if err := db.vfs.Remove(catalogFile + ".tmp"); err != nil && !errors.Is(err, storage.ErrNotExist) {
		return err
	}
	f, err := db.vfs.Create(catalogFile + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return db.vfs.Rename(catalogFile+".tmp", catalogFile)
}

// AddRef records that ref became live at consistency point cp. Safe for
// concurrent use; calls touching different write-store shards proceed in
// parallel.
func (db *DB) AddRef(ref Ref, cp uint64) { db.eng.AddRef(ref, cp) }

// RemoveRef records that ref ceased to be live at consistency point cp.
// Safe for concurrent use.
func (db *DB) RemoveRef(ref Ref, cp uint64) { db.eng.RemoveRef(ref, cp) }

// Checkpoint makes all reference changes up to cp durable, together with
// the snapshot catalog. Call it from the file system's consistency-point
// commit path. cp must be greater than the last committed consistency
// point; a stale cp returns ErrStaleCP (checked up front, before even
// the catalog is written, though the engine re-validates under its lock
// — so a stale call racing a successful one may still persist the
// catalog, which is always safe: the catalog commits first by design).
//
// The catalog is persisted BEFORE the engine commit. The catalog is the
// masking authority — a snapshot deletion, say, takes effect the moment
// the catalog no longer lists it — so a crash between the two commits
// must never leave reference data claiming the new consistency point
// while the catalog still shows the old topology: deleted snapshots would
// resurrect in query masking, and the WAL replay filter (which skips
// records at or below the manifest CP) could not repair it. The reverse
// order is safe: a newer catalog over older reference data only means
// in-flight reference updates were lost to the crash, exactly the
// file-system state the consistency-point model already assumes.
func (db *DB) Checkpoint(cp uint64) error {
	if committed := db.eng.CP(); cp <= committed {
		return fmt.Errorf("%w: Checkpoint(%d), committed CP is %d", ErrStaleCP, cp, committed)
	}
	if err := db.saveCatalog(); err != nil {
		return err
	}
	return db.eng.Checkpoint(cp)
}

// Query returns every owner of the given physical block, masked to
// versions that still exist.
func (db *DB) Query(block uint64) ([]Owner, error) { return db.eng.Query(block) }

// QueryRange queries n consecutive block numbers starting at block,
// invoking visit for each.
func (db *DB) QueryRange(block uint64, n int, visit func(block uint64, owners []Owner) bool) error {
	return db.eng.QueryRange(block, n, visit)
}

// Compact runs database maintenance: merges runs, precomputes the Combined
// table, and purges records of deleted snapshots. Run it periodically, or
// before query-intensive maintenance tasks.
//
// Like Checkpoint, the catalog is persisted before the engine mutates
// durable state: compaction purges records based on the reaped catalog,
// so the reaping must not be lost to a crash while the purge survives.
func (db *DB) Compact() error {
	db.cat.ReapZombies()
	if err := db.saveCatalog(); err != nil {
		return err
	}
	return db.eng.Compact()
}

// Maintain runs one synchronous maintenance pass honoring the configured
// CompactionPolicy and retention mode: an expiry sweep under RetainLive,
// then the merges the policy plans, re-planning until none remain. It is
// the deterministic counterpart of the background maintainer (and works
// with AutoCompact off). Unlike Compact — which always merges each
// partition's runs into one — Maintain under PolicyLeveled performs only
// the stepped merges that are due, leaving the leveled run structure in
// place.
//
// Like Compact, the catalog is persisted first: the pass purges and drops
// records based on the reaped topology.
func (db *DB) Maintain() error {
	db.cat.ReapZombies()
	if err := db.saveCatalog(); err != nil {
		return err
	}
	return db.eng.MaintainNow()
}

// RelocateBlock transplants all back references of oldBlock onto newBlock;
// call it after physically moving a block and updating file system
// pointers. Durable at the next Checkpoint.
func (db *DB) RelocateBlock(oldBlock, newBlock uint64) error {
	return db.eng.RelocateBlock(oldBlock, newBlock)
}

// Lifecycle is the snapshot-topology API: everything that creates or
// destroys snapshots, clones, and lines. It is the masking authority —
// query results and compaction's purge policy follow whatever topology it
// describes — and under Config.Retention == RetainLive it also drives the
// reclaim horizon that expiry and query pruning use. Obtain it from
// DB.Catalog. Changes become durable at the next Checkpoint, Compact, or
// Expire (each persists the catalog before touching reference data).
type Lifecycle interface {
	// CreateSnapshot retains version v (a CP number) of the given line.
	CreateSnapshot(line, v uint64) error
	// DeleteSnapshot removes a snapshot; if it has clones it is kept as a
	// zombie until they disappear.
	DeleteSnapshot(line, v uint64) error
	// CreateClone registers writable line newLine as a clone of (parent,
	// base). The clone's references are represented implicitly; no
	// records are written.
	CreateClone(newLine, parent, base uint64) error
	// DeleteLine destroys a line's live file system.
	DeleteLine(line uint64) error
	// Snapshots lists the retained snapshot versions of a line.
	Snapshots(line uint64) []uint64
	// Lines lists all known snapshot lines.
	Lines() []uint64
}

// Catalog returns the database's snapshot-lifecycle API. All methods are
// safe for concurrent use with each other and with reference updates and
// queries.
func (db *DB) Catalog() Lifecycle { return db.cat }

// ExpireStats reports what one Expire pass did.
type ExpireStats = core.ExpireStats

// Expire drops every Combined run whose consistency-point window falls
// entirely below the oldest snapshot still reachable from the catalog —
// reclaiming deleted snapshots' records without reading or rewriting any
// data; see the package documentation's Retention and expiry section.
// Runs only become droppable under Config.Retention == RetainLive (whose
// background maintainer also calls this automatically after every
// checkpoint); with RetainAll, Expire is a harmless no-op.
//
// Like Compact, zombie snapshots are reaped and the catalog persisted
// before the engine destroys durable state: the drop is justified by the
// reaped topology, so the reaping must not be lost to a crash while the
// drop survives.
func (db *DB) Expire() (ExpireStats, error) {
	db.cat.ReapZombies()
	if err := db.saveCatalog(); err != nil {
		return ExpireStats{}, err
	}
	return db.eng.Expire()
}

// RunInfo describes one live read-store run, including the
// consistency-point window its records cover.
type RunInfo = lsm.RunInfo

// Runs returns metadata for every live run — what backlogctl's stats
// subcommand prints per partition.
func (db *DB) Runs() []RunInfo { return db.eng.RunInfos() }

// CompressionEstimate reports the projected effect of the format-v2
// column-delta encoding on one table; see EstimateCompression.
type CompressionEstimate = core.CompressionEstimate

// EstimateCompression streams all runs of the named table (TableFrom,
// TableTo, or TableCombined) and computes the leaf-payload size its
// records would occupy under the format-v2 column-delta encoding, using
// the same codec the run writer uses. The structural lock is held shared
// only long enough to pin a view; the scan itself runs lock-free, so
// updates and checkpoints never stall behind an estimate. Useful for
// sizing a migration of a v1 database before compacting it.
func (db *DB) EstimateCompression(table string) (CompressionEstimate, error) {
	return db.eng.EstimateCompression(table)
}

// CreateSnapshot retains version v (a CP number) of the given line.
//
// Deprecated: use Catalog().CreateSnapshot.
func (db *DB) CreateSnapshot(line, v uint64) error { return db.cat.CreateSnapshot(line, v) }

// DeleteSnapshot removes a snapshot; if it has clones it is kept as a
// zombie until they disappear.
//
// Deprecated: use Catalog().DeleteSnapshot.
func (db *DB) DeleteSnapshot(line, v uint64) error { return db.cat.DeleteSnapshot(line, v) }

// CreateClone registers writable line newLine as a clone of (parent,
// base). The clone's references are represented implicitly; no records are
// written.
//
// Deprecated: use Catalog().CreateClone.
func (db *DB) CreateClone(newLine, parent, base uint64) error {
	return db.cat.CreateClone(newLine, parent, base)
}

// DeleteLine destroys a line's live file system.
//
// Deprecated: use Catalog().DeleteLine.
func (db *DB) DeleteLine(line uint64) error { return db.cat.DeleteLine(line) }

// Snapshots lists the retained snapshot versions of a line.
//
// Deprecated: use Catalog().Snapshots.
func (db *DB) Snapshots(line uint64) []uint64 { return db.cat.Snapshots(line) }

// Lines lists all known snapshot lines.
//
// Deprecated: use Catalog().Lines.
func (db *DB) Lines() []uint64 { return db.cat.Lines() }

// CP returns the last durable consistency point.
func (db *DB) CP() uint64 { return db.eng.CP() }

// Stats returns cumulative engine counters.
func (db *DB) Stats() Stats { return db.eng.Stats() }

// MaintenanceStats reports the background maintenance scheduler's
// activity (AutoCompact) and the current worst per-partition run count.
func (db *DB) MaintenanceStats() MaintenanceStats { return db.eng.MaintenanceStats() }

// Metrics returns a point-in-time snapshot of every registered metric:
// counters, gauges, and latency histograms (see the package
// documentation's Observability section). The zero MetricsSnapshot is
// returned when Config.Metrics is off.
func (db *DB) Metrics() MetricsSnapshot { return db.eng.Metrics() }

// WriteMetrics writes the current metrics in the Prometheus text
// exposition format — the same bytes the debug listener's /metrics
// endpoint serves. A no-op when Config.Metrics is off.
func (db *DB) WriteMetrics(w io.Writer) error { return db.reg.WritePrometheus(w) }

// SlowOps returns the retained slow operations, oldest first; empty
// unless Config.SlowOpThreshold is set. The returned slice is a copy.
func (db *DB) SlowOps() []OpEvent { return db.eng.SlowOps() }

// IOReport samples the purpose-tagged I/O accounting: per-source device
// bytes and ops, cumulative totals, and the rolling write-amplification
// monitor (see the package documentation's I/O attribution section). It
// takes no locks and is safe to call concurrently with all operations.
// When Config.DisableIOAttribution is set the report is zero with
// Attribution=false. The same report is served as JSON at /debug/io on
// Config.DebugAddr.
func (db *DB) IOReport() IOReport { return db.eng.IOReport() }

// DebugAddr returns the debug listener's bound address, or "" when
// Config.DebugAddr was empty. Useful with "127.0.0.1:0", which binds an
// ephemeral port.
func (db *DB) DebugAddr() string {
	if db.debug == nil {
		return ""
	}
	return db.debug.Addr()
}

// DurabilityErr reports the database's sticky durability error, if any. A
// non-nil error means a write-ahead-log append failed, so updates
// acknowledged since then are only as durable as DurabilityCheckpointOnly
// until the next successful Checkpoint (which makes everything buffered
// durable in the read store and clears the error). Applications running
// with DurabilitySync that relay durability promises to their own clients
// should poll this. Always nil in DurabilityCheckpointOnly mode.
func (db *DB) DurabilityErr() error { return db.eng.WALErr() }

// WriteShards returns the number of write-store shards in use.
func (db *DB) WriteShards() int { return db.eng.WriteShards() }

// Durability returns the configured durability mode.
func (db *DB) Durability() Durability { return db.eng.Durability() }

// SizeBytes returns the database's on-disk size.
func (db *DB) SizeBytes() int64 { return db.eng.SizeBytes() }

// Close persists the catalog and flushes buffered references according to
// the configured durability mode. With DurabilityBuffered or
// DurabilitySync the write-ahead log is synced and kept, so a reopened
// database replays every reference accepted before Close — nothing is
// lost. With DurabilityCheckpointOnly (the default, the paper's model)
// buffered (un-checkpointed) references are discarded, exactly like file
// system state past the last consistency point; call Checkpoint before
// Close to keep them.
// Close is safe to call more than once, including concurrently (a second
// call returns nil immediately without waiting for the first to finish);
// it may also race DurabilityErr pollers.
func (db *DB) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	if db.debug != nil {
		db.debug.Close()
	}
	err := db.eng.Close()
	if serr := db.saveCatalog(); err == nil {
		err = serr
	}
	return err
}
