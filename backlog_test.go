package backlog

import (
	"errors"
	"testing"

	"github.com/backlogfs/backlog/internal/core"
	"github.com/backlogfs/backlog/internal/storage"
)

func openMem(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Dir or InMemory succeeded")
	}
}

func TestBasicLifecycle(t *testing.T) {
	db := openMem(t)
	defer db.Close()

	db.AddRef(Ref{Block: 100, Inode: 2, Offset: 0, Line: 0}, 4)
	db.AddRef(Ref{Block: 101, Inode: 2, Offset: 1, Line: 0}, 4)
	if err := db.Checkpoint(4); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSnapshot(0, 4); err != nil {
		t.Fatal(err)
	}
	db.RemoveRef(Ref{Block: 101, Inode: 2, Offset: 1, Line: 0}, 7)
	if err := db.Checkpoint(7); err != nil {
		t.Fatal(err)
	}

	owners, err := db.Query(101)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 1 || owners[0].Live || owners[0].From != 4 || owners[0].To != 7 {
		t.Fatalf("owners = %+v", owners)
	}
	if db.CP() != 7 {
		t.Fatalf("CP = %d", db.CP())
	}
	if db.SizeBytes() == 0 {
		t.Fatal("SizeBytes = 0")
	}
	st := db.Stats()
	if st.RefsAdded != 2 || st.RefsRemoved != 1 || st.Checkpoints != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.AddRef(Ref{Block: 5, Inode: 9, Offset: 0, Line: 0}, 1)
	if err := db.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil { // persists the catalog too
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	owners, err := db2.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 1 || !owners[0].Live {
		t.Fatalf("owners after reopen = %+v", owners)
	}
	if snaps := db2.Snapshots(0); len(snaps) != 1 || snaps[0] != 1 {
		t.Fatalf("snapshots after reopen = %v", snaps)
	}
}

func TestCloneAndInheritance(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	db.AddRef(Ref{Block: 77, Inode: 3, Offset: 0, Line: 0}, 2)
	if err := db.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSnapshot(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateClone(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	owners, err := db.Query(77)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 2 {
		t.Fatalf("owners = %+v", owners)
	}
	if !owners[1].Inherited || owners[1].Line != 1 {
		t.Fatalf("clone owner = %+v", owners[1])
	}
	if lines := db.Lines(); len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if err := db.DeleteLine(1); err != nil {
		t.Fatal(err)
	}
	owners, err = db.Query(77)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 2 {
		// line 0 live + snapshot; clone masked out
		t.Logf("owners after clone delete = %+v", owners)
	}
}

func TestRelocateBlock(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	db.AddRef(Ref{Block: 10, Inode: 1, Offset: 0, Line: 0}, 1)
	if err := db.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := db.RelocateBlock(10, 900); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if owners, _ := db.Query(10); len(owners) != 0 {
		t.Fatalf("old block still owned: %+v", owners)
	}
	owners, err := db.Query(900)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 1 || !owners[0].Live {
		t.Fatalf("new block owners = %+v", owners)
	}
}

func TestQueryRange(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	for b := uint64(100); b < 110; b++ {
		db.AddRef(Ref{Block: b, Inode: b, Offset: 0, Line: 0}, 1)
	}
	if err := db.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	var owned int
	if err := db.QueryRange(95, 20, func(b uint64, owners []Owner) bool {
		if len(owners) > 0 {
			owned++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if owned != 10 {
		t.Fatalf("owned = %d, want 10", owned)
	}
}

// TestCloseFlushesPerDurabilityMode checks the DB.Close contract: with a
// write-ahead log (Buffered/Sync) references accepted after the last
// Checkpoint survive a clean close and reopen; with CheckpointOnly they
// are discarded, the paper's behavior.
func TestCloseFlushesPerDurabilityMode(t *testing.T) {
	for _, mode := range []Durability{DurabilityCheckpointOnly, DurabilityBuffered, DurabilitySync} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(Config{Dir: dir, Durability: mode})
			if err != nil {
				t.Fatal(err)
			}
			db.AddRef(Ref{Block: 42, Inode: 3, Offset: 1, Line: 0}, 1)
			if err := db.Checkpoint(1); err != nil {
				t.Fatal(err)
			}
			// Buffered past the checkpoint: kept or discarded by Close
			// depending on the mode.
			db.AddRef(Ref{Block: 43, Inode: 3, Offset: 2, Line: 0}, 2)
			db.RemoveRef(Ref{Block: 42, Inode: 3, Offset: 1, Line: 0}, 2)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2, err := Open(Config{Dir: dir, Durability: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			o42, err := db2.Query(42)
			if err != nil {
				t.Fatal(err)
			}
			o43, err := db2.Query(43)
			if err != nil {
				t.Fatal(err)
			}
			if mode == DurabilityCheckpointOnly {
				if len(o42) != 1 || !o42[0].Live {
					t.Fatalf("checkpointed ref = %+v", o42)
				}
				if len(o43) != 0 {
					t.Fatalf("un-checkpointed ref survived: %+v", o43)
				}
			} else {
				// The replayed RemoveRef closed the interval; with no
				// snapshot retaining [1, 2) the owner is masked out.
				if len(o42) != 0 {
					t.Fatalf("removed ref still visible: %+v", o42)
				}
				if len(o43) != 1 || !o43[0].Live {
					t.Fatalf("buffered ref lost by Close: %+v", o43)
				}
				if st := db2.Stats(); st.WALReplayed != 2 {
					t.Fatalf("WALReplayed = %d, want 2", st.WALReplayed)
				}
			}
		})
	}
}

func TestCompactKeepsAnswers(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	db.AddRef(Ref{Block: 50, Inode: 4, Offset: 2, Line: 0}, 1)
	if err := db.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	db.RemoveRef(Ref{Block: 50, Inode: 4, Offset: 2, Line: 0}, 3)
	if err := db.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	before, err := db.Query(50)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 || len(after) != 1 || before[0].From != after[0].From {
		t.Fatalf("compaction changed answers: %+v vs %+v", before, after)
	}
	// Delete the snapshot and compact again: the record is purged.
	if err := db.DeleteSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Query(50); len(got) != 0 {
		t.Fatalf("purged block still owned: %+v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{InMemory: true},
		{Dir: "/nonexistent/never-opened"},
		{InMemory: true, Partitions: 4, PartitionSpan: 1024, WriteShards: 2,
			Durability: DurabilitySync, Retention: RetainLive},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("good[%d]: Validate = %v", i, err)
		}
	}
	bad := []struct {
		name string
		cfg  Config
	}{
		{"missing dir", Config{}},
		{"negative partitions", Config{InMemory: true, Partitions: -1}},
		{"partitions without span", Config{InMemory: true, Partitions: 2}},
		{"negative write shards", Config{InMemory: true, WriteShards: -1}},
		{"negative compact threshold", Config{InMemory: true, CompactThreshold: -1}},
		{"unknown durability", Config{InMemory: true, Durability: Durability(9)}},
		{"unknown retention", Config{InMemory: true, Retention: RetentionPolicy(9)}},
	}
	for _, c := range bad {
		if err := c.cfg.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: Validate = %v, want ErrBadConfig", c.name, err)
		}
		// Open must reject the same configurations up front.
		if _, err := Open(c.cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: Open = %v, want ErrBadConfig", c.name, err)
		}
	}
}

// TestCatalogLifecycle drives every Lifecycle method through db.Catalog()
// and checks the deprecated DB wrappers stay views of the same state.
func TestCatalogLifecycle(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	cat := db.Catalog()

	db.AddRef(Ref{Block: 1, Inode: 1, Offset: 0, Line: 0}, 2)
	if err := db.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateSnapshot(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateClone(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	if lines := cat.Lines(); len(lines) != 2 || lines[0] != 0 || lines[1] != 1 {
		t.Fatalf("Lines = %v", lines)
	}
	if snaps := cat.Snapshots(0); len(snaps) != 1 || snaps[0] != 2 {
		t.Fatalf("Snapshots(0) = %v", snaps)
	}
	// The deprecated wrappers read the same catalog.
	if snaps := db.Snapshots(0); len(snaps) != 1 || snaps[0] != 2 {
		t.Fatalf("deprecated Snapshots(0) = %v", snaps)
	}
	if lines := db.Lines(); len(lines) != 2 {
		t.Fatalf("deprecated Lines = %v", lines)
	}
	if err := cat.DeleteLine(1); err != nil {
		t.Fatal(err)
	}
	if err := cat.DeleteSnapshot(0, 2); err != nil {
		t.Fatal(err)
	}
	if snaps := cat.Snapshots(0); len(snaps) != 0 {
		t.Fatalf("Snapshots(0) after delete = %v", snaps)
	}
}

// TestExpireEndToEnd seals two epochs behind RetainLive, deletes the
// first snapshot, and verifies db.Expire reclaims the first epoch's run
// without reading it — the public face of drop-based expiry — and that
// db.Runs exposes the CP windows driving the decision.
func TestExpireEndToEnd(t *testing.T) {
	fs := storage.NewMemFS()
	db, err := openVFS(fs, Config{InMemory: true, Retention: RetainLive})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cat := db.Catalog()

	epoch := func(snap, block uint64) {
		if err := cat.CreateSnapshot(0, snap); err != nil {
			t.Fatal(err)
		}
		db.AddRef(Ref{Block: block, Inode: block, Offset: 0, Line: 0}, snap)
		if err := db.Checkpoint(snap); err != nil {
			t.Fatal(err)
		}
		db.RemoveRef(Ref{Block: block, Inode: block, Offset: 0, Line: 0}, snap+1)
		if err := db.Checkpoint(snap + 1); err != nil {
			t.Fatal(err)
		}
		// Under RetainLive, Compact runs in tiered mode and seals the
		// finished window instead of re-merging it.
		if err := db.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	epoch(1, 1)
	epoch(3, 3)

	var sealed []RunInfo
	for _, r := range db.Runs() {
		if r.Table == core.TableCombined && r.Level >= 1 && r.CPWindowKnown && r.Overrides == 0 {
			sealed = append(sealed, r)
		}
	}
	if len(sealed) != 2 || sealed[0].MinCP != 1 || sealed[0].MaxCP != 2 {
		t.Fatalf("sealed runs = %+v, want two with the first windowed [1, 2]", sealed)
	}

	if err := cat.DeleteSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	before := fs.Stats()
	est, err := db.Expire()
	if err != nil {
		t.Fatal(err)
	}
	if est.Deferred || est.RunsDropped != 1 || est.RecordsDropped != 1 {
		t.Fatalf("ExpireStats = %+v, want 1 run / 1 record dropped", est)
	}
	if d := fs.Stats().Sub(before); d.BytesRead != 0 {
		t.Fatalf("public expiry read %d bytes", d.BytesRead)
	}
	if owners, err := db.Query(1); err != nil || len(owners) != 0 {
		t.Fatalf("expired block 1: owners=%v err=%v", owners, err)
	}
	if owners, err := db.Query(3); err != nil || len(owners) != 1 {
		t.Fatalf("retained block 3: owners=%v err=%v", owners, err)
	}
	st := db.Stats()
	if st.Expiries != 1 || st.RunsExpired != 1 || st.RecordsExpired != 1 {
		t.Fatalf("expiry counters = %+v", st)
	}
}
