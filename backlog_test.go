package backlog

import (
	"testing"
)

func openMem(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Dir or InMemory succeeded")
	}
}

func TestBasicLifecycle(t *testing.T) {
	db := openMem(t)
	defer db.Close()

	db.AddRef(Ref{Block: 100, Inode: 2, Offset: 0, Line: 0}, 4)
	db.AddRef(Ref{Block: 101, Inode: 2, Offset: 1, Line: 0}, 4)
	if err := db.Checkpoint(4); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSnapshot(0, 4); err != nil {
		t.Fatal(err)
	}
	db.RemoveRef(Ref{Block: 101, Inode: 2, Offset: 1, Line: 0}, 7)
	if err := db.Checkpoint(7); err != nil {
		t.Fatal(err)
	}

	owners, err := db.Query(101)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 1 || owners[0].Live || owners[0].From != 4 || owners[0].To != 7 {
		t.Fatalf("owners = %+v", owners)
	}
	if db.CP() != 7 {
		t.Fatalf("CP = %d", db.CP())
	}
	if db.SizeBytes() == 0 {
		t.Fatal("SizeBytes = 0")
	}
	st := db.Stats()
	if st.RefsAdded != 2 || st.RefsRemoved != 1 || st.Checkpoints != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.AddRef(Ref{Block: 5, Inode: 9, Offset: 0, Line: 0}, 1)
	if err := db.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil { // persists the catalog too
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	owners, err := db2.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 1 || !owners[0].Live {
		t.Fatalf("owners after reopen = %+v", owners)
	}
	if snaps := db2.Snapshots(0); len(snaps) != 1 || snaps[0] != 1 {
		t.Fatalf("snapshots after reopen = %v", snaps)
	}
}

func TestCloneAndInheritance(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	db.AddRef(Ref{Block: 77, Inode: 3, Offset: 0, Line: 0}, 2)
	if err := db.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSnapshot(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateClone(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	owners, err := db.Query(77)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 2 {
		t.Fatalf("owners = %+v", owners)
	}
	if !owners[1].Inherited || owners[1].Line != 1 {
		t.Fatalf("clone owner = %+v", owners[1])
	}
	if lines := db.Lines(); len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if err := db.DeleteLine(1); err != nil {
		t.Fatal(err)
	}
	owners, err = db.Query(77)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 2 {
		// line 0 live + snapshot; clone masked out
		t.Logf("owners after clone delete = %+v", owners)
	}
}

func TestRelocateBlock(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	db.AddRef(Ref{Block: 10, Inode: 1, Offset: 0, Line: 0}, 1)
	if err := db.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := db.RelocateBlock(10, 900); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if owners, _ := db.Query(10); len(owners) != 0 {
		t.Fatalf("old block still owned: %+v", owners)
	}
	owners, err := db.Query(900)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 1 || !owners[0].Live {
		t.Fatalf("new block owners = %+v", owners)
	}
}

func TestQueryRange(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	for b := uint64(100); b < 110; b++ {
		db.AddRef(Ref{Block: b, Inode: b, Offset: 0, Line: 0}, 1)
	}
	if err := db.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	var owned int
	if err := db.QueryRange(95, 20, func(b uint64, owners []Owner) bool {
		if len(owners) > 0 {
			owned++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if owned != 10 {
		t.Fatalf("owned = %d, want 10", owned)
	}
}

// TestCloseFlushesPerDurabilityMode checks the DB.Close contract: with a
// write-ahead log (Buffered/Sync) references accepted after the last
// Checkpoint survive a clean close and reopen; with CheckpointOnly they
// are discarded, the paper's behavior.
func TestCloseFlushesPerDurabilityMode(t *testing.T) {
	for _, mode := range []Durability{DurabilityCheckpointOnly, DurabilityBuffered, DurabilitySync} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(Config{Dir: dir, Durability: mode})
			if err != nil {
				t.Fatal(err)
			}
			db.AddRef(Ref{Block: 42, Inode: 3, Offset: 1, Line: 0}, 1)
			if err := db.Checkpoint(1); err != nil {
				t.Fatal(err)
			}
			// Buffered past the checkpoint: kept or discarded by Close
			// depending on the mode.
			db.AddRef(Ref{Block: 43, Inode: 3, Offset: 2, Line: 0}, 2)
			db.RemoveRef(Ref{Block: 42, Inode: 3, Offset: 1, Line: 0}, 2)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2, err := Open(Config{Dir: dir, Durability: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			o42, err := db2.Query(42)
			if err != nil {
				t.Fatal(err)
			}
			o43, err := db2.Query(43)
			if err != nil {
				t.Fatal(err)
			}
			if mode == DurabilityCheckpointOnly {
				if len(o42) != 1 || !o42[0].Live {
					t.Fatalf("checkpointed ref = %+v", o42)
				}
				if len(o43) != 0 {
					t.Fatalf("un-checkpointed ref survived: %+v", o43)
				}
			} else {
				// The replayed RemoveRef closed the interval; with no
				// snapshot retaining [1, 2) the owner is masked out.
				if len(o42) != 0 {
					t.Fatalf("removed ref still visible: %+v", o42)
				}
				if len(o43) != 1 || !o43[0].Live {
					t.Fatalf("buffered ref lost by Close: %+v", o43)
				}
				if st := db2.Stats(); st.WALReplayed != 2 {
					t.Fatalf("WALReplayed = %d, want 2", st.WALReplayed)
				}
			}
		})
	}
}

func TestCompactKeepsAnswers(t *testing.T) {
	db := openMem(t)
	defer db.Close()
	db.AddRef(Ref{Block: 50, Inode: 4, Offset: 2, Line: 0}, 1)
	if err := db.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	db.RemoveRef(Ref{Block: 50, Inode: 4, Offset: 2, Line: 0}, 3)
	if err := db.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	before, err := db.Query(50)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 || len(after) != 1 || before[0].From != after[0].From {
		t.Fatalf("compaction changed answers: %+v vs %+v", before, after)
	}
	// Delete the snapshot and compact again: the record is purged.
	if err := db.DeleteSnapshot(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, _ := db.Query(50); len(got) != 0 {
		t.Fatalf("purged block still owned: %+v", got)
	}
}
