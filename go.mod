module github.com/backlogfs/backlog

go 1.24
